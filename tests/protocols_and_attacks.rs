//! Integration tests for the protocol and attack layers: privacy
//! properties that span crates (protocols leak what the threat model says
//! they leak; attacks succeed/fail as the hardening predicts).

use pprl::attacks::bf_cryptanalysis::pattern_frequency_attack;
use pprl::attacks::frequency::reidentification_rate;
use pprl::core::qgram::{qgram_set, QGramConfig};
use pprl::crypto::dp::BudgetAccountant;
use pprl::datagen::generator::{Generator, GeneratorConfig};
use pprl::encoding::encoder::{RecordEncoder, RecordEncoderConfig};
use pprl::eval::privacy::{disclosure_risk, information_gain};
use pprl::protocols::interactive::{interactive_linkage, ReviewablePair};
use pprl::protocols::multi_party::{multi_party_linkage, MultiPartyConfig};
use pprl::protocols::patterns::Pattern;
use pprl::protocols::three_party::{lu_linkage, LuProtocolConfig};
use pprl::protocols::two_party::{two_party_linkage, TwoPartyConfig};

fn generator(seed: u64) -> Generator {
    Generator::new(GeneratorConfig {
        seed,
        corruption_rate: 0.15,
        ..GeneratorConfig::default()
    })
    .expect("valid config")
}

#[test]
fn all_protocols_find_the_same_overlap() {
    let (a, b) = generator(1).dataset_pair(120, 120, 40).unwrap();
    let truth: std::collections::HashSet<_> = a.ground_truth_pairs(&b).into_iter().collect();

    let two = two_party_linkage(&a, &b, &TwoPartyConfig::standard(b"k".to_vec()).unwrap()).unwrap();
    let lu = lu_linkage(&a, &b, &LuProtocolConfig::standard(b"k".to_vec()).unwrap()).unwrap();
    for (name, matches) in [("two-party", &two.matches), ("lu", &lu.matches)] {
        let tp = matches
            .iter()
            .filter(|&&(i, j, _)| truth.contains(&(i, j)))
            .count();
        assert!(
            tp as f64 / truth.len() as f64 > 0.6,
            "{name} recall too low: {tp}/{}",
            truth.len()
        );
    }
}

#[test]
fn multi_party_cost_ranking_matches_pattern_theory() {
    let ds = generator(2).multi_party(6, 25, 5).unwrap();
    let mut costs = Vec::new();
    for pattern in [
        Pattern::Ring,
        Pattern::Tree { fanout: 2 },
        Pattern::Hierarchical { group_size: 3 },
    ] {
        let mut cfg = MultiPartyConfig::standard(b"k".to_vec());
        cfg.pattern = pattern;
        let out = multi_party_linkage(&ds, &cfg).unwrap();
        costs.push((pattern, out.cost, out.matches.len()));
    }
    // Same matches regardless of routing.
    assert_eq!(costs[0].2, costs[1].2);
    assert_eq!(costs[0].2, costs[2].2);
    // Tree uses fewer rounds than ring for 6 parties.
    assert!(costs[1].1.rounds < costs[0].1.rounds);
}

#[test]
fn encoded_dataset_leaks_less_than_plaintext() {
    // Information gain of (surname → encoding) drops when salting is on.
    let mut g = generator(3);
    let ds = pprl::core::record::Dataset::from_records(
        pprl::core::schema::Schema::person(),
        g.population(400),
    )
    .unwrap();
    let surnames: Vec<String> = ds.column_text("last_name").unwrap();

    let plain_cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
    let mut salted_cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
    salted_cfg.salt_field = Some("dob".into());

    let pairs_for = |cfg: RecordEncoderConfig| {
        let enc = RecordEncoder::new(cfg, ds.schema()).unwrap();
        let encoded = enc.encode_dataset(&ds).unwrap();
        surnames
            .iter()
            .cloned()
            .zip(encoded.records.iter().map(|r| r.clk().unwrap().to_bytes()))
            .collect::<Vec<_>>()
    };
    let gain_plain = information_gain(&pairs_for(plain_cfg));
    let gain_salted = information_gain(&pairs_for(salted_cfg));
    // Both are near H(surname) here because whole records are distinct, but
    // disclosure risk of the *name-only* encoding shows the salting effect:
    let enc = pprl::encoding::bloom::BloomEncoder::new(pprl::encoding::bloom::BloomParams {
        len: 256,
        num_hashes: 6,
        scheme: pprl::encoding::bloom::HashingScheme::DoubleHashing,
        key: b"k".to_vec(),
    })
    .unwrap();
    let cfg = QGramConfig::default();
    let name_encodings: Vec<Vec<u8>> = surnames
        .iter()
        .map(|s| enc.encode_tokens(&qgram_set(s, &cfg)).to_bytes())
        .collect();
    let risk = disclosure_risk(&name_encodings).unwrap();
    // Deterministic name encodings group duplicates: risk below 1.
    assert!(risk < 1.0);
    assert!(gain_plain >= 0.0 && gain_salted >= 0.0);
}

#[test]
fn pattern_attack_fails_on_clk_but_works_on_field_filters() {
    // CLKs mix all fields, destroying single-field frequency alignment;
    // name-only field filters remain attackable.
    let mut g = generator(4);
    let ds = pprl::core::record::Dataset::from_records(
        pprl::core::schema::Schema::person(),
        g.population(1500),
    )
    .unwrap();
    let surnames: Vec<String> = ds.column_text("last_name").unwrap();
    let dict: Vec<String> = pprl::datagen::lookup::LAST_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect();
    let qcfg = QGramConfig::default();
    let tokens = |w: &str| qgram_set(w, &qcfg);

    // Field filters of the surname alone.
    let enc = pprl::encoding::bloom::BloomEncoder::new(pprl::encoding::bloom::BloomParams {
        len: 512,
        num_hashes: 8,
        scheme: pprl::encoding::bloom::HashingScheme::DoubleHashing,
        key: b"secret".to_vec(),
    })
    .unwrap();
    let field_filters: Vec<_> = surnames
        .iter()
        .map(|s| enc.encode_tokens(&tokens(s)))
        .collect();
    let field_attack = pattern_frequency_attack(&field_filters, &dict, tokens).unwrap();
    let field_rate = reidentification_rate(&field_attack.guesses, &surnames).unwrap();

    // Record-level CLKs.
    let clk_enc = RecordEncoder::new(
        RecordEncoderConfig::person_clk(b"secret".to_vec()),
        ds.schema(),
    )
    .unwrap();
    let clks: Vec<_> = clk_enc
        .encode_dataset(&ds)
        .unwrap()
        .records
        .iter()
        .map(|r| r.clk().unwrap().clone())
        .collect();
    let clk_attack = pattern_frequency_attack(&clks, &dict, tokens).unwrap();
    let clk_rate = reidentification_rate(&clk_attack.guesses, &surnames).unwrap();

    assert!(
        field_rate > 0.5,
        "field-level filters should be attackable: {field_rate}"
    );
    assert!(
        clk_rate < field_rate / 2.0,
        "CLKs should resist much better: clk {clk_rate} vs field {field_rate}"
    );
}

#[test]
fn interactive_review_traces_budget_quality_frontier() {
    // More budget → (weakly) better F1.
    let pairs: Vec<ReviewablePair> = {
        let mut rng = pprl::core::rng::SplitMix64::new(5);
        (0..300)
            .map(|i| {
                let is_match = rng.next_bool(0.5);
                let centre = if is_match { 0.75 } else { 0.55 };
                ReviewablePair {
                    a: i,
                    b: i,
                    similarity: (centre + (rng.next_f64() - 0.5) * 0.3).clamp(0.0, 1.0),
                    is_match,
                }
            })
            .collect()
    };
    let f1_of = |budget_units: f64| {
        let mut budget = BudgetAccountant::new(budget_units).unwrap();
        let out = interactive_linkage(&pairs, 0.5, 0.85, &mut budget, 1.0).unwrap();
        let pred: std::collections::HashSet<_> = out.predicted.iter().copied().collect();
        let tp = pairs
            .iter()
            .filter(|p| p.is_match && pred.contains(&(p.a, p.b)))
            .count();
        let fp = pred.len() - tp;
        let fn_ = pairs.iter().filter(|p| p.is_match).count() - tp;
        2.0 * tp as f64 / (2 * tp + fp + fn_).max(1) as f64
    };
    let low = f1_of(0.5);
    let high = f1_of(500.0);
    assert!(
        high >= low,
        "more review budget should not hurt: {low} -> {high}"
    );
    assert!(
        high > 0.95,
        "full review should nearly perfect the band: {high}"
    );
}
