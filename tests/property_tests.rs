//! Property-based tests (proptest) over the core invariants of the
//! workspace: similarity-function ranges and symmetry, Bloom-filter
//! monotonicity, big-integer algebra, secret-sharing round trips, and
//! metric bounds.

use proptest::prelude::*;

use pprl::core::bitvec::BitVec;
use pprl::core::qgram::{qgram_dice, qgram_jaccard, QGramConfig};
use pprl::crypto::bigint::BigUint;
use pprl::crypto::secret_sharing::{
    additive_reconstruct, additive_share, shamir_reconstruct, shamir_share, FIELD_PRIME,
};
use pprl::encoding::bloom::{BloomEncoder, BloomParams, HashingScheme};
use pprl::similarity::bitvec_sim::{dice_bits, hamming_similarity, jaccard_bits};
use pprl::similarity::edit::{bag_distance, damerau_levenshtein, levenshtein};
use pprl::similarity::jaro::{jaro, jaro_winkler};

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{0,12}").expect("valid regex")
}

fn positions(len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..len, 0..len / 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- string similarities ----------

    #[test]
    fn edit_distances_symmetric_and_bounded(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        prop_assert_eq!(d, levenshtein(&b, &a));
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        prop_assert!(damerau_levenshtein(&a, &b) <= d);
        prop_assert!(bag_distance(&a, &b) <= d);
    }

    #[test]
    fn edit_distance_triangle_inequality(a in word(), b in word(), c in word()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn edit_distance_identity(a in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
    }

    #[test]
    fn jaro_family_in_unit_interval_and_symmetric(a in word(), b in word()) {
        for f in [jaro, jaro_winkler] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "similarity {} out of range", s);
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
        }
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn qgram_similarities_bounded_and_jaccard_leq_dice(a in word(), b in word()) {
        let cfg = QGramConfig::default();
        let d = qgram_dice(&a, &b, &cfg);
        let j = qgram_jaccard(&a, &b, &cfg);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!(j <= d + 1e-12);
        prop_assert!((qgram_dice(&a, &a, &cfg) - 1.0).abs() < 1e-12);
    }

    // ---------- bit vectors and Bloom filters ----------

    #[test]
    fn bitvec_set_algebra_counts_consistent(pa in positions(256), pb in positions(256)) {
        let a = BitVec::from_positions(256, &pa).unwrap();
        let b = BitVec::from_positions(256, &pb).unwrap();
        // inclusion–exclusion
        prop_assert_eq!(a.or_count(&b) + a.and_count(&b), a.count_ones() + b.count_ones());
        prop_assert_eq!(a.xor_count(&b), a.or_count(&b) - a.and_count(&b));
        // byte round trip
        let back = BitVec::from_bytes(&a.to_bytes(), 256).unwrap();
        prop_assert_eq!(&back, &a);
    }

    #[test]
    fn bitvec_similarities_bounded_symmetric(pa in positions(128), pb in positions(128)) {
        let a = BitVec::from_positions(128, &pa).unwrap();
        let b = BitVec::from_positions(128, &pb).unwrap();
        for f in [dice_bits, jaccard_bits, hamming_similarity] {
            let s = f(&a, &b).unwrap();
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - f(&b, &a).unwrap()).abs() < 1e-12);
        }
        prop_assert_eq!(dice_bits(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn bloom_filter_superset_monotone(tokens in proptest::collection::vec(word(), 1..8), extra in word()) {
        let enc = BloomEncoder::new(BloomParams {
            len: 512,
            num_hashes: 6,
            scheme: HashingScheme::DoubleHashing,
            key: b"prop".to_vec(),
        }).unwrap();
        let small = enc.encode_tokens(&tokens);
        let mut more = tokens.clone();
        more.push(extra);
        let big = enc.encode_tokens(&more);
        // every bit of the smaller token set's filter is set in the bigger
        prop_assert_eq!(small.and_count(&big), small.count_ones());
        // membership holds for all inserted tokens
        for t in &more {
            prop_assert!(enc.contains(&big, t));
        }
    }

    // ---------- big integers ----------

    #[test]
    fn bigint_add_sub_round_trip(a in any::<u128>(), b in any::<u128>()) {
        let x = BigUint::from_u128(a);
        let y = BigUint::from_u128(b);
        let sum = x.add(&y);
        prop_assert_eq!(sum.sub(&y).unwrap(), x.clone());
        prop_assert_eq!(sum.sub(&x).unwrap(), y);
    }

    #[test]
    fn bigint_divrem_reconstructs(a in any::<u128>(), b in 1u128..) {
        let x = BigUint::from_u128(a);
        let y = BigUint::from_u128(b);
        let (q, r) = x.divrem(&y).unwrap();
        prop_assert_eq!(q.mul(&y).add(&r), x);
        prop_assert!(r < y);
    }

    #[test]
    fn bigint_mul_commutative_distributive(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    #[test]
    fn bigint_modpow_matches_u128(base in 1u64..1000, exp in 0u64..20, modulus in 2u64..100_000) {
        let expect = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % modulus as u128;
            }
            acc as u64
        };
        let got = BigUint::from_u64(base)
            .modpow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus))
            .unwrap();
        prop_assert_eq!(got, BigUint::from_u64(expect));
    }

    // ---------- secret sharing ----------

    #[test]
    fn additive_sharing_round_trips(secret in 0..FIELD_PRIME, n in 1usize..8, seed in any::<u64>()) {
        let mut rng = pprl::core::rng::SplitMix64::new(seed);
        let shares = additive_share(secret, n, &mut rng).unwrap();
        prop_assert_eq!(additive_reconstruct(&shares), secret);
    }

    #[test]
    fn shamir_round_trips_for_any_valid_threshold(
        secret in 0..FIELD_PRIME,
        t in 1usize..5,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n = t + extra;
        let mut rng = pprl::core::rng::SplitMix64::new(seed);
        let shares = shamir_share(secret, t, n, &mut rng).unwrap();
        // any prefix of exactly t shares reconstructs
        prop_assert_eq!(shamir_reconstruct(&shares[..t]).unwrap(), secret);
    }
}
