//! Randomized property tests over the core invariants of the workspace:
//! similarity-function ranges and symmetry, Bloom-filter monotonicity,
//! big-integer algebra, secret-sharing round trips, and metric bounds.
//!
//! Ported from `proptest` to the in-repo deterministic `SplitMix64`
//! harness so the default workspace builds and tests with zero external
//! crates: each property runs over a fixed number of seeded random cases,
//! which makes failures exactly reproducible from the case index.

use pprl::core::bitvec::BitVec;
use pprl::core::qgram::{qgram_dice, qgram_jaccard, QGramConfig};
use pprl::core::rng::SplitMix64;
use pprl::crypto::bigint::BigUint;
use pprl::crypto::secret_sharing::{
    additive_reconstruct, additive_share, shamir_reconstruct, shamir_share, FIELD_PRIME,
};
use pprl::encoding::bloom::{BloomEncoder, BloomParams, HashingScheme};
use pprl::similarity::bitvec_sim::{dice_bits, hamming_similarity, jaccard_bits};
use pprl::similarity::edit::{bag_distance, damerau_levenshtein, levenshtein};
use pprl::similarity::jaro::{jaro, jaro_winkler};

const CASES: usize = 64;

/// Random lowercase word of length 0..=12.
fn word(rng: &mut SplitMix64) -> String {
    let len = rng.next_below(13) as usize;
    (0..len)
        .map(|_| (b'a' + rng.next_below(26) as u8) as char)
        .collect()
}

/// Random bit positions in `0..len` (up to `len / 2` of them).
fn positions(rng: &mut SplitMix64, len: usize) -> Vec<usize> {
    let n = rng.next_below(len as u64 / 2) as usize;
    (0..n)
        .map(|_| rng.next_below(len as u64) as usize)
        .collect()
}

// ---------- string similarities ----------

#[test]
fn edit_distances_symmetric_and_bounded() {
    let mut rng = SplitMix64::new(0xE1);
    for case in 0..CASES {
        let (a, b) = (word(&mut rng), word(&mut rng));
        let d = levenshtein(&a, &b);
        assert_eq!(d, levenshtein(&b, &a), "case {case}: {a:?} vs {b:?}");
        assert!(d <= a.chars().count().max(b.chars().count()));
        assert!(damerau_levenshtein(&a, &b) <= d);
        assert!(bag_distance(&a, &b) <= d);
    }
}

#[test]
fn edit_distance_triangle_inequality() {
    let mut rng = SplitMix64::new(0xE2);
    for case in 0..CASES {
        let (a, b, c) = (word(&mut rng), word(&mut rng), word(&mut rng));
        assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c),
            "case {case}: {a:?} {b:?} {c:?}"
        );
    }
}

#[test]
fn edit_distance_identity() {
    let mut rng = SplitMix64::new(0xE3);
    for _ in 0..CASES {
        let a = word(&mut rng);
        assert_eq!(levenshtein(&a, &a), 0);
        assert_eq!(damerau_levenshtein(&a, &a), 0);
    }
}

#[test]
fn jaro_family_in_unit_interval_and_symmetric() {
    let mut rng = SplitMix64::new(0xE4);
    for case in 0..CASES {
        let (a, b) = (word(&mut rng), word(&mut rng));
        for f in [jaro, jaro_winkler] {
            let s = f(&a, &b);
            assert!(
                (0.0..=1.0).contains(&s),
                "case {case}: similarity {s} out of range"
            );
            assert!((s - f(&b, &a)).abs() < 1e-12);
        }
        assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }
}

#[test]
fn qgram_similarities_bounded_and_jaccard_leq_dice() {
    let mut rng = SplitMix64::new(0xE5);
    let cfg = QGramConfig::default();
    for case in 0..CASES {
        let (a, b) = (word(&mut rng), word(&mut rng));
        let d = qgram_dice(&a, &b, &cfg);
        let j = qgram_jaccard(&a, &b, &cfg);
        assert!((0.0..=1.0).contains(&d), "case {case}");
        assert!((0.0..=1.0).contains(&j), "case {case}");
        assert!(j <= d + 1e-12, "case {case}: jaccard {j} > dice {d}");
        assert!((qgram_dice(&a, &a, &cfg) - 1.0).abs() < 1e-12);
    }
}

// ---------- bit vectors and Bloom filters ----------

#[test]
fn bitvec_set_algebra_counts_consistent() {
    let mut rng = SplitMix64::new(0xE6);
    for case in 0..CASES {
        let a = BitVec::from_positions(256, &positions(&mut rng, 256)).unwrap();
        let b = BitVec::from_positions(256, &positions(&mut rng, 256)).unwrap();
        // inclusion–exclusion
        assert_eq!(
            a.or_count(&b) + a.and_count(&b),
            a.count_ones() + b.count_ones(),
            "case {case}"
        );
        assert_eq!(a.xor_count(&b), a.or_count(&b) - a.and_count(&b));
        // byte round trip
        let back = BitVec::from_bytes(&a.to_bytes(), 256).unwrap();
        assert_eq!(back, a);
    }
}

#[test]
fn bitvec_similarities_bounded_symmetric() {
    let mut rng = SplitMix64::new(0xE7);
    for case in 0..CASES {
        let a = BitVec::from_positions(128, &positions(&mut rng, 128)).unwrap();
        let b = BitVec::from_positions(128, &positions(&mut rng, 128)).unwrap();
        for f in [dice_bits, jaccard_bits, hamming_similarity] {
            let s = f(&a, &b).unwrap();
            assert!((0.0..=1.0).contains(&s), "case {case}");
            assert!((s - f(&b, &a).unwrap()).abs() < 1e-12);
        }
        assert_eq!(dice_bits(&a, &a).unwrap(), 1.0);
    }
}

#[test]
fn bloom_filter_superset_monotone() {
    let mut rng = SplitMix64::new(0xE8);
    let enc = BloomEncoder::new(BloomParams {
        len: 512,
        num_hashes: 6,
        scheme: HashingScheme::DoubleHashing,
        key: b"prop".to_vec(),
    })
    .unwrap();
    for case in 0..CASES {
        let n = 1 + rng.next_below(7) as usize;
        let tokens: Vec<String> = (0..n).map(|_| word(&mut rng)).collect();
        let small = enc.encode_tokens(&tokens);
        let mut more = tokens.clone();
        more.push(word(&mut rng));
        let big = enc.encode_tokens(&more);
        // every bit of the smaller token set's filter is set in the bigger
        assert_eq!(small.and_count(&big), small.count_ones(), "case {case}");
        // membership holds for all inserted tokens
        for t in &more {
            assert!(enc.contains(&big, t), "case {case}: lost token {t:?}");
        }
    }
}

// ---------- big integers ----------

#[test]
fn bigint_add_sub_round_trip() {
    let mut rng = SplitMix64::new(0xE9);
    for _ in 0..CASES {
        let a = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let b = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let x = BigUint::from_u128(a);
        let y = BigUint::from_u128(b);
        let sum = x.add(&y);
        assert_eq!(sum.sub(&y).unwrap(), x);
        assert_eq!(sum.sub(&x).unwrap(), y);
    }
}

#[test]
fn bigint_divrem_reconstructs() {
    let mut rng = SplitMix64::new(0xEA);
    for _ in 0..CASES {
        let a = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let b = (rng.next_u64() as u128) << rng.next_below(60);
        let x = BigUint::from_u128(a);
        let y = BigUint::from_u128(b.max(1));
        let (q, r) = x.divrem(&y).unwrap();
        assert_eq!(q.mul(&y).add(&r), x);
        assert!(r < y);
    }
}

#[test]
fn bigint_mul_commutative_distributive() {
    let mut rng = SplitMix64::new(0xEB);
    for _ in 0..CASES {
        let (x, y, z) = (
            BigUint::from_u64(rng.next_u64()),
            BigUint::from_u64(rng.next_u64()),
            BigUint::from_u64(rng.next_u64()),
        );
        assert_eq!(x.mul(&y), y.mul(&x));
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }
}

#[test]
fn bigint_modpow_matches_u128() {
    let mut rng = SplitMix64::new(0xEC);
    for _ in 0..CASES {
        let base = 1 + rng.next_below(999);
        let exp = rng.next_below(20);
        let modulus = 2 + rng.next_below(99_998);
        let expect = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % modulus as u128;
            }
            acc as u64
        };
        let got = BigUint::from_u64(base)
            .modpow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus))
            .unwrap();
        assert_eq!(got, BigUint::from_u64(expect));
    }
}

// ---------- secret sharing ----------

#[test]
fn additive_sharing_round_trips() {
    let mut rng = SplitMix64::new(0xED);
    for _ in 0..CASES {
        let secret = rng.next_below(FIELD_PRIME);
        let n = 1 + rng.next_below(7) as usize;
        let shares = additive_share(secret, n, &mut rng).unwrap();
        assert_eq!(additive_reconstruct(&shares), secret);
    }
}

#[test]
fn shamir_round_trips_for_any_valid_threshold() {
    let mut rng = SplitMix64::new(0xEE);
    for _ in 0..CASES {
        let secret = rng.next_below(FIELD_PRIME);
        let t = 1 + rng.next_below(4) as usize;
        let n = t + rng.next_below(4) as usize;
        let shares = shamir_share(secret, t, n, &mut rng).unwrap();
        // any prefix of exactly t shares reconstructs
        assert_eq!(shamir_reconstruct(&shares[..t]).unwrap(), secret);
    }
}
