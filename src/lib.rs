//! # pprl — privacy-preserving record linkage toolkit
//!
//! An umbrella crate re-exporting the whole PPRL workspace: foundation
//! types (`core`), cryptographic substrates (`crypto`), privacy masking
//! functions (`encoding`), similarity functions (`similarity`),
//! complexity-reduction technologies (`blocking`), classification and
//! clustering (`matching`), linkage protocols (`protocols`), privacy
//! attacks (`attacks`), synthetic data generation (`datagen`), evaluation
//! metrics and tuning (`eval`), end-to-end pipelines (`pipeline`), a
//! persistent sharded filter store with a concurrent query engine
//! (`index`), an authenticated encrypted session layer (`session`), a
//! concurrent TCP linkage query service over that store (`server`), and
//! a scatter–gather coordinator distributing linkage over sharded
//! server nodes (`cluster`).
//!
//! ## Quickstart
//!
//! ```
//! use pprl::datagen::generator::{Generator, GeneratorConfig};
//! use pprl::pipeline::batch::{link, PipelineConfig};
//! use pprl::eval::quality::Confusion;
//!
//! // Two organisations with overlapping, independently-corrupted records.
//! let mut gen = Generator::new(GeneratorConfig::default()).unwrap();
//! let (a, b) = gen.dataset_pair(200, 200, 60).unwrap();
//!
//! // Privacy-preserving linkage with a shared secret key.
//! let config = PipelineConfig::standard(b"shared-secret".to_vec()).unwrap();
//! let result = link(&a, &b, &config).unwrap();
//!
//! let quality = Confusion::from_pairs(&result.pairs(), &a.ground_truth_pairs(&b));
//! assert!(quality.precision() > 0.9);
//! assert!(quality.recall() > 0.6);
//! ```

#![forbid(unsafe_code)]

pub use pprl_attacks as attacks;
pub use pprl_blocking as blocking;
pub use pprl_cluster as cluster;
pub use pprl_core as core;
pub use pprl_crypto as crypto;
pub use pprl_datagen as datagen;
pub use pprl_encoding as encoding;
pub use pprl_eval as eval;
pub use pprl_index as index;
pub use pprl_matching as matching;
pub use pprl_pipeline as pipeline;
pub use pprl_protocols as protocols;
pub use pprl_server as server;
pub use pprl_session as session;
pub use pprl_similarity as similarity;
